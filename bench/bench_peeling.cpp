// Experiment E3 - Lemma 6 (Pruning Lemma): the peeling process finishes in
// at most ceil(log2 n) iterations because the number of forest vertices of
// degree >= 3 at least halves per iteration.
//
// Section 2 drives the iteration-looping pruning drivers (Algorithm 3 /
// Lemma 12): peel_with_local_decisions and the local-decision audits, which
// re-derive every node's layer decision from its ball at every iteration.
// Each driver runs inside its own span, so the --json report carries
// per-driver wall_ms; together with the cache.* counters this is the
// before/after evidence for the cross-iteration ball cache
// (CHORDAL_BALL_CACHE=0 forces the uncached recompute path; every table
// cell is cache-independent by construction).
#include <cmath>

#include "bench_common.hpp"
#include "core/local_decision.hpp"
#include "core/peeling.hpp"

int main(int argc, char** argv) {
  using namespace chordal;
  bench::Context ctx(argc, argv,
                     "E3: peeling layer counts and the halving invariant",
                     "Lemma 6 / Corollary 1 - <= ceil(log2 n) layers; "
                     "degree->=3 counts halve each iteration");

  Table table({"shape", "n", "cliques", "layers", "ceil(log2 n)",
               "halving held", "deg>=3 trace"});
  for (TreeShape shape : {TreeShape::kPath, TreeShape::kCaterpillar,
                          TreeShape::kRandom, TreeShape::kBinary,
                          TreeShape::kSpider}) {
    const char* names[] = {"path", "caterpillar", "random", "binary",
                           "spider"};
    for (int n : {1024, 8192, 65536}) {
      obs::Span run(std::string("peel ") + names[static_cast<int>(shape)] +
                    " n=" + std::to_string(n));
      auto gen = bench::chordal_workload(n, shape, 13);
      CliqueForest forest = CliqueForest::build(gen.graph);
      core::PeelConfig config;
      config.mode = core::PeelMode::kColoring;
      config.k = 4;
      auto result = core::peel(gen.graph, forest, config);
      bool halves = true;
      std::string trace;
      for (std::size_t i = 0; i < result.high_degree_counts.size(); ++i) {
        if (i > 0) {
          halves = halves && result.high_degree_counts[i] <=
                                 result.high_degree_counts[i - 1] / 2;
          trace += ",";
        }
        trace += Table::fmt(result.high_degree_counts[i]);
      }
      table.add_row(
          {names[static_cast<int>(shape)],
           Table::fmt(gen.graph.num_vertices()),
           Table::fmt(forest.num_cliques()), Table::fmt(result.num_layers),
           Table::fmt(static_cast<int>(
               std::ceil(std::log2(gen.graph.num_vertices())))),
           halves ? "yes" : "NO", trace});
    }
  }
  table.print();
  ctx.add_table("halving", table);

  std::printf("\n");
  Table drivers({"driver", "n", "k", "layers", "decisions", "mismatches"});
  for (int n : {1500, 4000}) {
    auto gen = bench::chordal_workload(n, TreeShape::kRandom, 21);
    const Graph& g = gen.graph;
    CliqueForest forest = CliqueForest::build(g);
    const int k = 4;
    {
      obs::Span span("peel_with_local_decisions n=" +
                     std::to_string(g.num_vertices()));
      auto local_peel = core::peel_with_local_decisions(g, forest, k);
      drivers.add_row({"peel_with_local_decisions",
                       Table::fmt(g.num_vertices()), Table::fmt(k),
                       Table::fmt(local_peel.num_layers), "-", "-"});
    }
    core::PeelConfig config;
    config.mode = core::PeelMode::kColoring;
    config.k = k;
    auto peeling = core::peel(g, forest, config);
    {
      obs::Span span("audit_local_pruning n=" +
                     std::to_string(g.num_vertices()));
      auto audit = core::audit_local_pruning(g, forest, peeling, k, 1);
      drivers.add_row({"audit_local_pruning", Table::fmt(g.num_vertices()),
                       Table::fmt(k), Table::fmt(peeling.num_layers),
                       Table::fmt(audit.decisions_checked),
                       Table::fmt(audit.mismatches)});
    }
  }
  drivers.print();
  ctx.add_table("pruning_drivers", drivers);
  std::printf("\nmismatches must be 0: node-local decisions equal the "
              "global peeling (Lemma 12).\n");
  return 0;
}
