// Experiment E10 - substrate micro-benchmarks (google-benchmark): the
// building blocks every algorithm leans on. Wall-clock results document
// that the simulation substrate scales near-linearly.
#include <benchmark/benchmark.h>

#include <vector>

#include "baselines/baselines.hpp"
#include "cliqueforest/forest.hpp"
#include "cliqueforest/local_view.hpp"
#include "core/mis.hpp"
#include "core/mvc.hpp"
#include "graph/cliques.hpp"
#include "graph/generators.hpp"
#include "graph/peo.hpp"
#include "local/ball.hpp"
#include "local/ball_cache.hpp"
#include "local/workspace.hpp"
#include "support/cachectl.hpp"
#include "support/parallel.hpp"

namespace {

using namespace chordal;

GeneratedChordal workload(int bags) {
  CliqueTreeConfig config;
  config.num_bags = bags;
  config.shape = TreeShape::kRandom;
  config.seed = 12345;
  return random_chordal_from_clique_tree(config);
}

void BM_LexBfsPeo(benchmark::State& state) {
  auto gen = workload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(peo_or_throw(gen.graph));
  }
  state.SetComplexityN(gen.graph.num_vertices());
}
BENCHMARK(BM_LexBfsPeo)->Range(256, 16384)->Complexity();

void BM_MaximalCliques(benchmark::State& state) {
  auto gen = workload(static_cast<int>(state.range(0)));
  auto peo = peo_or_throw(gen.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(maximal_cliques_chordal(gen.graph, peo));
  }
  state.SetComplexityN(gen.graph.num_vertices());
}
BENCHMARK(BM_MaximalCliques)->Range(256, 16384)->Complexity();

void BM_CliqueForestBuild(benchmark::State& state) {
  auto gen = workload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CliqueForest::build(gen.graph));
  }
  state.SetComplexityN(gen.graph.num_vertices());
}
BENCHMARK(BM_CliqueForestBuild)->Range(256, 16384)->Complexity();

void BM_CliqueForestBuildReference(benchmark::State& state) {
  // CHORDAL_FOREST_REFERENCE path: sorted-merge intersection weights,
  // comparator-based edge sort. The gap to BM_CliqueForestBuild is the
  // counting-sort engine's construction win.
  auto gen = workload(static_cast<int>(state.range(0)));
  support::set_forest_reference(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CliqueForest::build(gen.graph));
  }
  support::set_forest_reference(-1);
  state.SetComplexityN(gen.graph.num_vertices());
}
BENCHMARK(BM_CliqueForestBuildReference)->Range(256, 16384)->Complexity();

void BM_FamilyMwsf(benchmark::State& state) {
  // The engine's hottest call shape: one Lemma 2 family forest per trusted
  // vertex, through a warm ForestScratch - no allocations, no O(n) state.
  auto gen = workload(2048);
  CliqueForest forest = CliqueForest::build(gen.graph);
  ForestScratch scratch;
  std::vector<std::pair<int, int>> edges;
  int v = 0;
  for (auto _ : state) {
    edges.clear();
    family_forest_edges(forest.cliques(), forest.cliques_of(v), scratch,
                        edges);
    benchmark::DoNotOptimize(edges.data());
    v = (v + 37) % gen.graph.num_vertices();
  }
}
BENCHMARK(BM_FamilyMwsf);

void BM_FamilyMwsfReference(benchmark::State& state) {
  // What compute_local_view used to do per trusted vertex: deep-copy the
  // family cliques, then run the allocating reference Kruskal whose
  // membership table is sized to the whole graph. The ratio to
  // BM_FamilyMwsf is the per-call improvement of the engine.
  auto gen = workload(2048);
  CliqueForest forest = CliqueForest::build(gen.graph);
  int v = 0;
  for (auto _ : state) {
    const auto& family = forest.cliques_of(v);
    std::vector<std::vector<int>> family_cliques;
    family_cliques.reserve(family.size());
    for (int c : family) family_cliques.push_back(word_vec(forest.clique(c)));
    benchmark::DoNotOptimize(max_weight_spanning_forest_reference(
        family_cliques, gen.graph.num_vertices()));
    v = (v + 37) % gen.graph.num_vertices();
  }
}
BENCHMARK(BM_FamilyMwsfReference);

void BM_BallCollection(benchmark::State& state) {
  auto gen = workload(2048);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        local::collect_ball(gen.graph, v, static_cast<int>(state.range(0))));
    v = (v + 37) % gen.graph.num_vertices();
  }
}
BENCHMARK(BM_BallCollection)->DenseRange(2, 14, 4);

void BM_BallCollectionRestricted(benchmark::State& state) {
  // The drivers' actual call shape: collection inside an activity mask.
  auto gen = workload(2048);
  std::vector<char> active(
      static_cast<std::size_t>(gen.graph.num_vertices()), 1);
  for (int v = 0; v < gen.graph.num_vertices(); v += 5) active[v] = 0;
  int v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::collect_ball(
        gen.graph, v, static_cast<int>(state.range(0)), &active));
    do {
      v = (v + 37) % gen.graph.num_vertices();
    } while (!active[v]);
  }
}
BENCHMARK(BM_BallCollectionRestricted)->DenseRange(2, 14, 4);

void BM_BallCollectionWorkspace(benchmark::State& state) {
  // Workspace form: same balls as BM_BallCollection, zero O(n) clears and
  // zero steady-state allocations. The ratio to BM_BallCollection is the
  // per-call allocation/clear overhead of the naive path.
  auto gen = workload(2048);
  local::BallWorkspace ws;
  local::Ball ball;
  int v = 0;
  for (auto _ : state) {
    local::collect_ball(gen.graph, v, static_cast<int>(state.range(0)),
                        nullptr, nullptr, ws, ball);
    benchmark::DoNotOptimize(ball.vertices.data());
    v = (v + 37) % gen.graph.num_vertices();
  }
}
BENCHMARK(BM_BallCollectionWorkspace)->DenseRange(2, 14, 4);

void BM_BallCollectionCached(benchmark::State& state) {
  // Repeat-query steady state: the drivers re-query the same centers every
  // peel iteration, so this cycles over 64 fixed centers at a fixed radius
  // with no deactivations - after the first lap every lookup is a pure
  // cache hit. The hits/misses counters land in the --benchmark JSON as the
  // cache-effectiveness record. CHORDAL_BALL_CACHE=0 turns this into the
  // uncached workspace path (before/after evidence in one binary).
  auto gen = workload(2048);
  local::BallCache cache(gen.graph);
  const int n = gen.graph.num_vertices();
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.shard(0).collect_ball((i * 131) % n,
                                    static_cast<int>(state.range(0))));
    i = (i + 1) % 64;
  }
  local::BallCache::Stats stats = cache.stats();
  state.counters["hits"] = static_cast<double>(stats.hits);
  state.counters["misses"] = static_cast<double>(stats.misses);
}
BENCHMARK(BM_BallCollectionCached)->DenseRange(2, 14, 4);

void BM_LocalView(benchmark::State& state) {
  auto gen = workload(1024);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_local_view(gen.graph, v, 6));
    v = (v + 41) % gen.graph.num_vertices();
  }
}
BENCHMARK(BM_LocalView);

void BM_LocalViewWorkspace(benchmark::State& state) {
  auto gen = workload(1024);
  local::BallWorkspace ws;
  LocalView view;
  int v = 0;
  for (auto _ : state) {
    local::compute_local_view(gen.graph, v, 6, nullptr, ws, view);
    benchmark::DoNotOptimize(view.cliques.vertices().data());
    v = (v + 41) % gen.graph.num_vertices();
  }
}
BENCHMARK(BM_LocalViewWorkspace);

void BM_LocalViewCached(benchmark::State& state) {
  // Same repeat-query pattern as BM_BallCollectionCached, for full views.
  auto gen = workload(1024);
  local::BallCache cache(gen.graph);
  const int n = gen.graph.num_vertices();
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.shard(0).local_view((i * 131) % n, 6).view);
    i = (i + 1) % 64;
  }
  local::BallCache::Stats stats = cache.stats();
  state.counters["hits"] = static_cast<double>(stats.hits);
  state.counters["misses"] = static_cast<double>(stats.misses);
}
BENCHMARK(BM_LocalViewCached);

void BM_MvcEndToEnd(benchmark::State& state) {
  auto gen = workload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::mvc_chordal(gen.graph, {.eps = 0.5}));
  }
  state.SetComplexityN(gen.graph.num_vertices());
}
BENCHMARK(BM_MvcEndToEnd)->Range(256, 8192)->Complexity();

void BM_MvcEndToEndThreads(benchmark::State& state) {
  // Thread sweep of the parallel engine (arg = worker count). Output is
  // bit-identical at every point of the sweep; only wall clock may move.
  auto gen = workload(8192);
  support::set_num_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::mvc_chordal(gen.graph, {.eps = 0.5}));
  }
  support::set_num_threads(0);
}
BENCHMARK(BM_MvcEndToEndThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_MisEndToEndThreads(benchmark::State& state) {
  auto gen = workload(8192);
  support::set_num_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::mis_chordal(gen.graph));
  }
  support::set_num_threads(0);
}
BENCHMARK(BM_MisEndToEndThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_OptimalColoringBaseline(benchmark::State& state) {
  auto gen = workload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::optimal_coloring_chordal(gen.graph));
  }
}
BENCHMARK(BM_OptimalColoringBaseline)->Range(256, 8192);

}  // namespace

BENCHMARK_MAIN();
