// Experiment E10 - substrate micro-benchmarks (google-benchmark): the
// building blocks every algorithm leans on. Wall-clock results document
// that the simulation substrate scales near-linearly.
#include <benchmark/benchmark.h>

#include "baselines/baselines.hpp"
#include "cliqueforest/forest.hpp"
#include "cliqueforest/local_view.hpp"
#include "core/mvc.hpp"
#include "graph/cliques.hpp"
#include "graph/generators.hpp"
#include "graph/peo.hpp"
#include "local/ball.hpp"

namespace {

using namespace chordal;

GeneratedChordal workload(int bags) {
  CliqueTreeConfig config;
  config.num_bags = bags;
  config.shape = TreeShape::kRandom;
  config.seed = 12345;
  return random_chordal_from_clique_tree(config);
}

void BM_LexBfsPeo(benchmark::State& state) {
  auto gen = workload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(peo_or_throw(gen.graph));
  }
  state.SetComplexityN(gen.graph.num_vertices());
}
BENCHMARK(BM_LexBfsPeo)->Range(256, 16384)->Complexity();

void BM_MaximalCliques(benchmark::State& state) {
  auto gen = workload(static_cast<int>(state.range(0)));
  auto peo = peo_or_throw(gen.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(maximal_cliques_chordal(gen.graph, peo));
  }
  state.SetComplexityN(gen.graph.num_vertices());
}
BENCHMARK(BM_MaximalCliques)->Range(256, 16384)->Complexity();

void BM_CliqueForestBuild(benchmark::State& state) {
  auto gen = workload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CliqueForest::build(gen.graph));
  }
  state.SetComplexityN(gen.graph.num_vertices());
}
BENCHMARK(BM_CliqueForestBuild)->Range(256, 16384)->Complexity();

void BM_BallCollection(benchmark::State& state) {
  auto gen = workload(2048);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        local::collect_ball(gen.graph, v, static_cast<int>(state.range(0))));
    v = (v + 37) % gen.graph.num_vertices();
  }
}
BENCHMARK(BM_BallCollection)->DenseRange(2, 14, 4);

void BM_LocalView(benchmark::State& state) {
  auto gen = workload(1024);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_local_view(gen.graph, v, 6));
    v = (v + 41) % gen.graph.num_vertices();
  }
}
BENCHMARK(BM_LocalView);

void BM_MvcEndToEnd(benchmark::State& state) {
  auto gen = workload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::mvc_chordal(gen.graph, {.eps = 0.5}));
  }
  state.SetComplexityN(gen.graph.num_vertices());
}
BENCHMARK(BM_MvcEndToEnd)->Range(256, 8192)->Complexity();

void BM_OptimalColoringBaseline(benchmark::State& state) {
  auto gen = workload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::optimal_coloring_chordal(gen.graph));
  }
}
BENCHMARK(BM_OptimalColoringBaseline)->Range(256, 8192);

}  // namespace

BENCHMARK_MAIN();
