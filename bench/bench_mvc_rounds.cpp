// Experiment E2 - Theorem 4 (round complexity): the distributed MVC
// algorithm runs in O((1/eps) log n) rounds. We sweep n at fixed eps (rounds
// should grow ~ log n) and 1/eps at fixed n (rounds should grow linearly),
// reporting the normalized ratio rounds / (k * log2 n), which should remain
// roughly constant.
#include <cmath>
#include <string>

#include "bench_common.hpp"
#include "core/mvc.hpp"

int main(int argc, char** argv) {
  using namespace chordal;
  bench::Context ctx(argc, argv, "E2: MVC round complexity",
                     "Theorem 4 - O((1/eps) log n) rounds; Lemma 6 - at most "
                     "ceil(log2 n) peel layers");

  Table by_n({"n", "eps", "k", "layers", "ceil(log2 n)", "rounds",
              "rounds/(k*log2 n)"});
  for (int n : {256, 1024, 4096, 16384, 65536}) {
    obs::Span run("run n=" + std::to_string(n) + " eps=0.5");
    auto gen = bench::chordal_workload(n, TreeShape::kBinary, 7);
    auto result = core::mvc_chordal(gen.graph, {.eps = 0.5});
    double log_n = std::log2(static_cast<double>(gen.graph.num_vertices()));
    by_n.add_row({Table::fmt(gen.graph.num_vertices()), Table::fmt(0.5, 2),
                  Table::fmt(result.k), Table::fmt(result.num_layers),
                  Table::fmt(static_cast<int>(std::ceil(log_n))),
                  Table::fmt(result.rounds),
                  Table::fmt(static_cast<double>(result.rounds) /
                                 (result.k * log_n),
                             2)});
  }
  by_n.print();
  ctx.add_table("rounds_by_n", by_n);

  std::printf("\nFixed n, growing 1/eps (rounds should scale ~ 1/eps):\n\n");
  Table by_eps({"n", "eps", "k", "rounds", "rounds/k"});
  for (double eps : {2.0, 1.0, 0.5, 0.25, 0.125, 0.0625}) {
    obs::Span run("run n=4096 eps=" + std::to_string(eps));
    auto gen = bench::chordal_workload(4096, TreeShape::kBinary, 7);
    auto result = core::mvc_chordal(gen.graph, {.eps = eps});
    by_eps.add_row({Table::fmt(gen.graph.num_vertices()),
                    Table::fmt(eps, 4), Table::fmt(result.k),
                    Table::fmt(result.rounds),
                    Table::fmt(static_cast<double>(result.rounds) / result.k,
                               1)});
  }
  by_eps.print();
  ctx.add_table("rounds_by_eps", by_eps);
  return 0;
}
