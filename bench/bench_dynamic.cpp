// Experiment E17 - incremental chordal dynamics under edge/vertex churn.
//
// Adopts a large chordal graph (streaming interval / k-tree families at
// n = 10^4..10^6) into DynamicChordal, then replays a seeded churn mix -
// exploratory edge deletes (the certifier may reject), re-insertion of
// previously deleted edges, vertex delete + same-neighborhood reinsert, and
// clique-neighborhood vertex insert + delete - timing every applied
// mutation individually. The headline comparison is incremental updates/sec
// against the full-rebuild baseline: what a non-incremental system pays per
// update, measured as DynamicChordal::recompute_signature on the same graph
// (chordality check + canonical clique family + MWSF + labels from
// scratch). The dyn.*.speedup gauges carry sibling dyn.*.speedup_floor
// gauges that scripts/bench_gate.py enforces: incremental repair must stay
// at least 10x full rebuild, at every scale.
//
//   bench_dynamic --json BENCH_DYNAMIC.json   # full matrix, n=10^6 included
//   bench_dynamic --smoke                     # n=10^4 only, for check.sh
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/dynamic.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using namespace chordal;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ChurnResult {
  long long applied = 0;   // mutations that went through
  long long rejected = 0;  // certifier refusals (witness produced)
  double elapsed_ms = 0;   // whole churn loop, rejections included
  Samples latency_us;  // per applied mutation
};

/// One timed mutation attempt; records latency only for applied updates so
/// the percentiles describe the repair path, not the reject path.
template <typename Fn>
bool timed(Fn&& fn, ChurnResult* out) {
  double t0 = now_ms();
  try {
    fn();
  } catch (const ChordalityViolation&) {
    ++out->rejected;
    return false;
  }
  out->latency_us.add((now_ms() - t0) * 1000.0);
  ++out->applied;
  return true;
}

/// Random alive vertex with degree in [1, max_deg]; -1 when the sampling
/// budget runs out (never happens on the bench families).
int pick_vertex(const DynamicGraph& g, Rng& rng, int max_deg) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    int v = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(g.num_slots())));
    if (g.alive(v) && g.degree(v) >= 1 && g.degree(v) <= max_deg) return v;
  }
  return -1;
}

/// Greedy clique inside N[u], capped at 4 vertices: always a valid
/// insert_vertex neighborhood.
std::vector<int> clique_around(const DynamicGraph& g, int u, Rng& rng) {
  std::vector<int> clique{u};
  auto nbrs = g.neighbors(u);
  if (nbrs.empty()) return clique;
  std::size_t start = rng.next_below(nbrs.size());
  for (std::size_t i = 0; i < nbrs.size() && clique.size() < 4; ++i) {
    int w = static_cast<int>(nbrs[(start + i) % nbrs.size()]);
    bool joins = true;
    for (int c : clique) {
      if (c != u && !g.has_edge(w, c)) {
        joins = false;
        break;
      }
    }
    if (joins) clique.push_back(w);
  }
  return clique;
}

ChurnResult run_churn(DynamicChordal& dc, int iterations, std::uint64_t seed) {
  Rng rng(seed);
  ChurnResult out;
  std::deque<std::pair<int, int>> deleted;
  std::vector<int> nbrs;
  double loop_t0 = now_ms();
  for (int it = 0; it < iterations; ++it) {
    std::uint64_t roll = rng.next_below(100);
    if (roll < 60 && !deleted.empty()) {
      // Re-insert a previously deleted edge: almost always accepted, and
      // together with the exploratory deletes it forms a sustained
      // delete/insert toggle over certified-deletable edges.
      auto [u, v] = deleted.front();
      deleted.pop_front();
      if (dc.graph().alive(u) && dc.graph().alive(v) &&
          !dc.graph().has_edge(u, v)) {
        timed([&] { dc.insert_edge(u, v); }, &out);
      }
    } else if (roll < 60) {
      // Exploratory edge delete; the certifier rejects edges sitting in
      // more than one maximal clique, which is part of the measured work.
      int v = pick_vertex(dc.graph(), rng, 1 << 20);
      if (v < 0) continue;
      auto adj = dc.graph().neighbors(v);
      int w = static_cast<int>(adj[rng.next_below(adj.size())]);
      if (timed([&] { dc.delete_edge(v, w); }, &out)) {
        deleted.emplace_back(v, w);
        if (deleted.size() > 4096) deleted.pop_front();
      }
    } else if (roll < 80) {
      // Vertex delete + same-neighborhood reinsert: two applied updates
      // that exercise the clique-forest splice and the label repair on
      // both sides. Degree-capped so one unlucky hub does not dominate.
      int v = pick_vertex(dc.graph(), rng, 64);
      if (v < 0) continue;
      nbrs.clear();
      for (VertexId w : dc.graph().neighbors(v)) {
        nbrs.push_back(static_cast<int>(w));
      }
      timed([&] { dc.delete_vertex(v); }, &out);
      timed([&] { (void)dc.insert_vertex(nbrs); }, &out);
    } else {
      // Clique-neighborhood vertex insert, then delete it again.
      int u = pick_vertex(dc.graph(), rng, 1 << 20);
      if (u < 0) continue;
      std::vector<int> clique = clique_around(dc.graph(), u, rng);
      int z = -1;
      timed([&] { z = dc.insert_vertex(clique); }, &out);
      if (z >= 0) timed([&] { dc.delete_vertex(z); }, &out);
    }
  }
  out.elapsed_ms = now_ms() - loop_t0;
  return out;
}

void add_gauge(const char* name, double value) {
  if (obs::Registry* reg = obs::current()) reg->gauge(name).set(value);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip bench_dynamic's own flags before Context sees the rest.
  bool smoke = false;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::Context ctx(
      static_cast<int>(passthrough.size()), passthrough.data(),
      "E17: incremental dynamics vs full rebuild under churn",
      "certified edge/vertex churn through DynamicChordal repairs the "
      "clique forest and labels locally, sustaining update rates orders of "
      "magnitude above the per-update full-rebuild baseline while keeping "
      "the coloring at omega");

  struct Cell {
    const char* family;
    long long n;
    int iterations;
    int rebuild_reps;
  };
  std::vector<Cell> cells;
  if (smoke) {
    cells = {{"interval", 10'000, 400, 3}, {"ktree", 10'000, 400, 3}};
  } else {
    cells = {{"interval", 10'000, 3000, 3},  {"ktree", 10'000, 3000, 3},
             {"interval", 100'000, 2000, 2}, {"ktree", 100'000, 2000, 2},
             {"interval", 1'000'000, 1200, 1}, {"ktree", 1'000'000, 1200, 1}};
  }

  Table table({"family", "n", "m", "adopt ms", "applied", "rejected",
               "upd/s", "p50 us", "p95 us", "rebuild ms", "speedup",
               "colors", "omega"});
  constexpr std::uint64_t kSeed = 17;
  constexpr double kSpeedupFloor = 10.0;
  bool colors_optimal = true;
  for (const Cell& cell : cells) {
    Graph g;
    if (std::strcmp(cell.family, "interval") == 0) {
      StreamingIntervalConfig config;
      config.n = cell.n;
      config.seed = kSeed;
      g = std::move(streaming_interval_graph(config).graph);
    } else {
      g = streaming_k_tree(cell.n, 3, kSeed);
    }
    const long long m = static_cast<long long>(g.num_edges());

    double t0 = now_ms();
    DynamicChordal dc(g);
    double adopt_ms = now_ms() - t0;

    ChurnResult churn = run_churn(dc, cell.iterations, kSeed ^ cell.n);
    double upd_s = churn.elapsed_ms > 0
                       ? 1000.0 * static_cast<double>(churn.applied) /
                             churn.elapsed_ms
                       : 0.0;
    double p50_us = churn.latency_us.empty() ? 0.0 : churn.latency_us.p50();
    double p95_us = churn.latency_us.empty() ? 0.0 : churn.latency_us.p95();

    // Full-rebuild baseline: the per-update cost of a system that recomputes
    // every derived structure from scratch after each mutation.
    double rebuild_ms = 0;
    for (int rep = 0; rep < cell.rebuild_reps; ++rep) {
      double r0 = now_ms();
      auto sig = DynamicChordal::recompute_signature(dc.graph());
      rebuild_ms += now_ms() - r0;
      auto sink = sig.colors.size();
      asm volatile("" : : "r"(sink) : "memory");
    }
    rebuild_ms /= cell.rebuild_reps;
    double rebuild_upd_s = rebuild_ms > 0 ? 1000.0 / rebuild_ms : 0.0;
    double speedup = rebuild_upd_s > 0 ? upd_s / rebuild_upd_s : 0.0;

    int colors = dc.num_colors();
    int omega = dc.max_clique_size();
    if (colors != omega) colors_optimal = false;

    table.add_row({cell.family, Table::fmt(cell.n), Table::fmt(m),
                   Table::fmt(static_cast<long long>(adopt_ms)),
                   Table::fmt(churn.applied), Table::fmt(churn.rejected),
                   Table::fmt(static_cast<long long>(upd_s)),
                   Table::fmt(p50_us, 1), Table::fmt(p95_us, 1),
                   Table::fmt(rebuild_ms, 1),
                   Table::fmt(static_cast<long long>(speedup)),
                   Table::fmt(colors), Table::fmt(omega)});

    std::string key = "dyn." + std::string(cell.family) + ".n" +
                      std::to_string(cell.n);
    add_gauge((key + ".upd_s").c_str(), upd_s);
    add_gauge((key + ".p50_us").c_str(), p50_us);
    add_gauge((key + ".p95_us").c_str(), p95_us);
    add_gauge((key + ".rebuild_ms").c_str(), rebuild_ms);
    add_gauge((key + ".speedup").c_str(), speedup);
    add_gauge((key + ".speedup_floor").c_str(), kSpeedupFloor);
  }
  table.print();
  ctx.add_table("dynamic", table);

  std::printf(
      "\nspeedup = incremental applied updates/sec over full-rebuild "
      "updates/sec (recompute_signature per update); the gate floor is "
      "%.0fx at every cell.\n",
      kSpeedupFloor);
  std::printf("coloring stays optimal under churn: colors == omega %s\n",
              colors_optimal ? "at every cell" : "VIOLATED");
  return colors_optimal ? 0 : 1;
}
